//! Workspace-level property tests: random graphs through the full pipeline.

use distributed_rcm::core::{
    algebraic_rcm, dist_rcm, par_rcm, pseudo_peripheral, DistRcmConfig, SortMode,
};
use distributed_rcm::dist::{HybridConfig, MachineModel};
use distributed_rcm::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random symmetric graph from a seed: n vertices, ~avg_deg·n/2 edges.
fn random_graph(n: usize, avg_deg: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::new(n, n);
    for _ in 0..(n * avg_deg / 2) {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            b.push_sym(u, v);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_implementations_agree(n in 2usize..120, deg in 1usize..8, seed in 0u64..500) {
        let a = random_graph(n, deg, seed);
        let serial = rcm(&a);
        let (algebraic, _) = algebraic_rcm(&a);
        let (shared, _) = par_rcm(&a, 2);
        prop_assert_eq!(&serial, &algebraic);
        prop_assert_eq!(&serial, &shared);
        let cfg = DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(4, 1),
            balance_seed: None,
            sort_mode: SortMode::Full,
            direction: ExpandDirection::from_env(),
            start_node: StartNode::GeorgeLiu,
        };
        let dist = dist_rcm(&a, &cfg);
        prop_assert_eq!(&serial, &dist.perm);
        // The hybrid backend shares the data path; only the cost model
        // differs.
        let hybrid_cfg = DistRcmConfig {
            hybrid: HybridConfig::new(24, 6),
            ..cfg
        };
        let hybrid = dist_rcm(&a, &hybrid_cfg);
        prop_assert_eq!(&serial, &hybrid.perm);
    }

    #[test]
    fn rcm_is_approximately_idempotent(
        n in 2usize..100, deg in 1usize..6, seed in 0u64..500
    ) {
        // RCM is a heuristic, not a fixed point: re-running it on its own
        // output may pick a different pseudo-peripheral root and drift by a
        // little. It must never drift by much.
        let a = random_graph(n, deg, seed);
        let p1 = rcm(&a);
        let a1 = a.permute_sym(&p1);
        let p2 = rcm(&a1);
        let bw1 = matrix_bandwidth(&a1);
        let bw2 = ordering_bandwidth(&a1, &p2);
        prop_assert!(
            bw2 as f64 <= bw1 as f64 * 1.5 + 3.0,
            "re-RCM drifted badly: {} -> {}",
            bw1,
            bw2
        );
    }

    #[test]
    fn components_receive_contiguous_label_ranges(
        n in 2usize..100, deg in 0usize..4, seed in 0u64..500
    ) {
        // Exact structural invariant of (R)CM: every connected component is
        // labeled as one contiguous block.
        let a = random_graph(n, deg, seed);
        let p = rcm(&a);
        // Union-find over edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (r, c) in a.iter_entries() {
            let (pr, pc) = (find(&mut parent, r as usize), find(&mut parent, c as usize));
            if pr != pc {
                parent[pr] = pc;
            }
        }
        use std::collections::HashMap;
        let mut ranges: HashMap<usize, (u32, u32, usize)> = HashMap::new();
        for v in 0..n {
            let root = find(&mut parent, v);
            let label = p.new_of(v as u32);
            let e = ranges.entry(root).or_insert((label, label, 0));
            e.0 = e.0.min(label);
            e.1 = e.1.max(label);
            e.2 += 1;
        }
        for (_, (lo, hi, count)) in ranges {
            prop_assert_eq!(
                (hi - lo + 1) as usize,
                count,
                "component labels are not contiguous"
            );
        }
    }

    #[test]
    fn sort_mode_ablation_always_valid(n in 2usize..80, deg in 1usize..6, seed in 0u64..200) {
        let a = random_graph(n, deg, seed);
        for mode in [SortMode::Full, SortMode::NoSort, SortMode::GlobalSortAtEnd] {
            let cfg = DistRcmConfig {
                machine: MachineModel::edison(),
                hybrid: HybridConfig::new(4, 1),
                balance_seed: None,
                sort_mode: mode,
                direction: ExpandDirection::from_env(),
                start_node: StartNode::GeorgeLiu,
            };
            let r = dist_rcm(&a, &cfg);
            prop_assert_eq!(r.perm.len(), n);
            // Bijectivity is enforced by the Permutation type; verify the
            // labeling covered every vertex by round-tripping.
            prop_assert_eq!(
                r.perm.then(&r.perm.inverse()),
                Permutation::identity(n)
            );
        }
    }

    #[test]
    fn distributed_deterministic_across_grids_with_balance(
        n in 8usize..80, deg in 1usize..6, seed in 0u64..200
    ) {
        // With a *fixed* balance seed the result must still be identical
        // across grid sizes (the permutation changes the internal ids the
        // same way regardless of the grid).
        let a = random_graph(n, deg, seed);
        let mut reference = None;
        for procs in [1usize, 4, 9] {
            let cfg = DistRcmConfig {
                machine: MachineModel::edison(),
                hybrid: HybridConfig::new(procs, 1),
                balance_seed: Some(7),
                sort_mode: SortMode::Full,
                direction: ExpandDirection::from_env(),
                start_node: StartNode::GeorgeLiu,
            };
            let r = dist_rcm(&a, &cfg);
            match &reference {
                None => reference = Some(r.perm),
                Some(p) => prop_assert_eq!(p, &r.perm, "grid {} diverged", procs),
            }
        }
    }

    #[test]
    fn pseudo_peripheral_ecc_at_least_half_diameter(
        n in 2usize..80, deg in 1usize..5, seed in 0u64..200
    ) {
        // Classic guarantee-flavored check: the pseudo-peripheral vertex's
        // eccentricity is at least that of the starting vertex.
        let a = random_graph(n, deg, seed);
        let pp = pseudo_peripheral(&a, 0);
        let start_ecc = distributed_rcm::core::bfs_level_structure(&a, 0).eccentricity();
        prop_assert!(pp.eccentricity >= start_ecc);
    }
}
