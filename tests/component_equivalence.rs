//! Component-parallel equivalence — the bit-identity contract of
//! `EngineConfig::split_components`: a splitting engine must return
//! permutations bit-identical to fresh sequential `rcm_with_backend`
//! orderings on every backend, at every `RCM_THREADS` count (CI sweeps
//! 1/2/8), across degenerate component structures — empty, all-isolated,
//! a single giant component, a forest of small trees, a star+path mix —
//! and on random (frequently disconnected) proptest matrices. Plus the
//! steady-state check: resplitting matrices the warm splitter has already
//! seen allocates nothing.

use distributed_rcm::core::{
    rcm_with_backend, thread_counts_from_env, BackendKind, EngineConfig, OrderingEngine,
};
use distributed_rcm::graphgen::{forest, multi_body};
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::Vidx;
use proptest::prelude::*;

/// A star on `s` vertices and a path on `p` vertices, disjoint in one
/// matrix plus two trailing isolated vertices: one fat-level component,
/// one long-thin component, and size-1 components all at once.
fn star_path_mix(s: usize, p: usize) -> CscMatrix {
    let n = s + p + 2;
    let mut b = CooBuilder::new(n, n);
    for v in 1..s as Vidx {
        b.push_sym(0, v);
    }
    for v in 0..(p - 1) as Vidx {
        b.push_sym(s as Vidx + v, s as Vidx + v + 1);
    }
    b.build()
}

/// A connected 2D grid, stride-scrambled (`gcd(stride, w²) == 1`) so ids
/// are shuffled: the single-giant-component case where the split path
/// must fall through to the ordinary driver.
fn scrambled_grid(w: usize, stride: usize) -> CscMatrix {
    let n = w * w;
    let mut b = CooBuilder::new(n, n);
    for y in 0..w {
        for x in 0..w {
            let u = (y * w + x) as Vidx;
            if x + 1 < w {
                b.push_sym(u, u + 1);
            }
            if y + 1 < w {
                b.push_sym(u, u + w as Vidx);
            }
        }
    }
    let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
    b.build()
        .permute_sym(&Permutation::from_new_of_old(perm).unwrap())
}

fn degenerate_inputs() -> Vec<(&'static str, CscMatrix)> {
    vec![
        ("empty", CscMatrix::empty(0)),
        ("single-vertex", CscMatrix::empty(1)),
        ("all-isolated", CscMatrix::empty(25)),
        ("single-giant", scrambled_grid(9, 7)),
        ("forest", forest(6, 9, 5)),
        ("multi-body", multi_body(4, 5, 6)),
        ("star-path-mix", star_path_mix(11, 8)),
    ]
}

fn backends(threads: usize) -> Vec<BackendKind> {
    vec![
        BackendKind::Serial,
        BackendKind::Pooled { threads },
        BackendKind::Dist { cores: 16 },
        BackendKind::Hybrid {
            cores: 24,
            threads_per_proc: 6,
        },
    ]
}

#[test]
fn split_engines_match_fresh_sequential_orderings_on_degenerate_inputs() {
    for threads in thread_counts_from_env(&[1, 3]) {
        for kind in backends(threads) {
            // One warm engine per backend across the whole input list:
            // reuse is part of the contract under test.
            let mut engine = OrderingEngine::new(
                EngineConfig::builder()
                    .backend(kind)
                    .split_components(true)
                    .build(),
            );
            for (name, a) in degenerate_inputs() {
                let expect = rcm_with_backend(&a, BackendKind::Serial);
                let got = engine.order(&a).perm;
                assert_eq!(
                    got, expect,
                    "{name} diverged on {kind:?} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn resplitting_warm_inputs_allocates_nothing() {
    for threads in thread_counts_from_env(&[3]) {
        let mut engine = OrderingEngine::new(
            EngineConfig::builder()
                .backend(BackendKind::Pooled { threads })
                .split_components(true)
                .build(),
        );
        let mats: Vec<CscMatrix> = degenerate_inputs().into_iter().map(|(_, a)| a).collect();
        for a in &mats {
            engine.order(a);
        }
        let warm = engine.growth_events();
        for _ in 0..3 {
            for a in &mats {
                engine.order(a);
            }
        }
        assert_eq!(
            engine.growth_events(),
            warm,
            "resplitting warm inputs must not grow any buffer"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random sparse symmetric matrices — with few edges they are usually
    /// disconnected, exercising arbitrary component structures — ordered
    /// by splitting serial and pooled engines against the plain
    /// sequential reference.
    #[test]
    fn split_ordering_equals_sequential_on_random_matrices(
        n in 1usize..40,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        let mut b = CooBuilder::new(n, n);
        for (u, v) in pairs {
            b.push_sym((u % n) as Vidx, (v % n) as Vidx);
        }
        let a = b.build();
        let expect = rcm(&a);
        for kind in [BackendKind::Serial, BackendKind::Pooled { threads: 2 }] {
            let mut engine = OrderingEngine::new(
                EngineConfig::builder()
                    .backend(kind)
                    .split_components(true)
                    .build(),
            );
            prop_assert_eq!(&engine.order(&a).perm, &expect);
        }
    }
}
