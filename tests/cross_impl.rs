//! Cross-implementation integration tests: the four RCM implementations
//! must agree (exactly where determinism is guaranteed, in quality where
//! internal relabeling is allowed) on realistic suite matrices.

use distributed_rcm::core::{algebraic_rcm, dist_rcm, par_rcm, DistRcmConfig, SortMode};
use distributed_rcm::dist::{HybridConfig, MachineModel};
use distributed_rcm::graphgen::suite;
use distributed_rcm::prelude::*;

/// Tiny but structurally faithful instances of every suite class.
fn tiny_suite() -> Vec<(String, CscMatrix)> {
    suite()
        .into_iter()
        .map(|m| (m.name.to_string(), m.generate(m.default_scale * 0.05)))
        .collect()
}

#[test]
fn serial_algebraic_shared_agree_on_all_suite_classes() {
    for (name, a) in tiny_suite() {
        let serial = rcm(&a);
        let (algebraic, _) = algebraic_rcm(&a);
        let (shared, _) = par_rcm(&a, 3);
        assert_eq!(serial, algebraic, "{name}: serial vs algebraic");
        assert_eq!(serial, shared, "{name}: serial vs shared");
    }
}

#[test]
fn shared_backend_is_thread_count_independent_on_suite_classes() {
    // The acceptance sweep: bit-identical to the algebraic ordering at
    // every Table II thread count, on a graph large enough that interior
    // frontiers take the work-stealing parallel path.
    let m = distributed_rcm::graphgen::suite_matrix("ldoor").unwrap();
    let a = m.generate(m.default_scale * 0.5);
    let (expect, _) = algebraic_rcm(&a);
    for threads in [1usize, 2, 4, 8, 16] {
        let (got, stats) = par_rcm(&a, threads);
        assert_eq!(got, expect, "ldoor diverged at {threads} threads");
        if threads > 1 {
            assert!(
                stats.parallel_levels > 0,
                "{threads} threads never exercised the parallel pipeline"
            );
        }
    }
}

#[test]
fn distributed_matches_algebraic_on_multiple_grids() {
    for (name, a) in tiny_suite() {
        let (expect, _) = algebraic_rcm(&a);
        for procs in [1usize, 4, 9] {
            let cfg = DistRcmConfig {
                machine: MachineModel::edison(),
                hybrid: HybridConfig::new(procs, 1),
                balance_seed: None,
                sort_mode: SortMode::Full,
            };
            let r = dist_rcm(&a, &cfg);
            assert_eq!(r.perm, expect, "{name} diverged on {procs} ranks");
        }
    }
}

#[test]
fn load_balance_permutation_keeps_quality() {
    for (name, a) in tiny_suite() {
        let baseline = {
            let p = rcm(&a);
            ordering_bandwidth(&a, &p)
        };
        let cfg = DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(4, 1),
            balance_seed: Some(42),
            sort_mode: SortMode::Full,
        };
        let r = dist_rcm(&a, &cfg);
        let bw = ordering_bandwidth(&a, &r.perm);
        // Internal relabeling may shift tie-breaks; allow a modest band.
        assert!(
            bw as f64 <= baseline as f64 * 1.5 + 16.0,
            "{name}: balanced bandwidth {bw} vs baseline {baseline}"
        );
    }
}

#[test]
fn rcm_quality_direction_matches_paper() {
    // The paper's Fig. 3: RCM helps a lot on the FEM classes, and is nearly
    // a no-op on Serena/Flan-like and CI-like matrices.
    for (name, a) in tiny_suite() {
        let p = rcm(&a);
        let q = quality_report(&a, &p);
        assert!(
            q.bandwidth_after <= q.bandwidth_before,
            "{name}: RCM must not worsen the bandwidth ({} -> {})",
            q.bandwidth_before,
            q.bandwidth_after
        );
        // audikw/dielFilter shrink to ~6³ cubes at test scale, where the
        // bandwidth floor (a cube face × 3 dofs) caps the reduction factor;
        // check the strong-reduction claim on classes that keep shape.
        if matches!(name.as_str(), "ldoor" | "thermal2" | "nlpkkt240") {
            assert!(
                q.bandwidth_after * 3 < q.bandwidth_before,
                "{name}: expected a strong reduction, got {} -> {}",
                q.bandwidth_before,
                q.bandwidth_after
            );
        }
    }
}

#[test]
fn permutations_are_bijections_with_reversal_symmetry() {
    for (name, a) in tiny_suite() {
        let (cm, _) = distributed_rcm::core::cuthill_mckee(&a);
        let rcm_p = rcm(&a);
        assert_eq!(cm.reversed(), rcm_p, "{name}: RCM must reverse CM");
        assert_eq!(
            cm.then(&cm.inverse()),
            Permutation::identity(a.n_rows()),
            "{name}: not a bijection"
        );
    }
}
