//! Cross-backend integration tests: the four `RcmRuntime` backends run the
//! *same* generic driver (`rcm_core::driver::drive_cm`) and must therefore
//! agree bit for bit wherever determinism is guaranteed — on every suite
//! class and on every degenerate shape — and in quality where internal
//! relabeling is allowed.

use distributed_rcm::core::{
    algebraic_rcm, dist_rcm, par_rcm, rcm_with_backend, thread_counts_from_env, BackendKind,
    DistRcmConfig, SortMode,
};
use distributed_rcm::dist::{HybridConfig, MachineModel};
use distributed_rcm::graphgen::suite;
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::Vidx;

/// Tiny but structurally faithful instances of every suite class.
fn tiny_suite() -> Vec<(String, CscMatrix)> {
    suite()
        .into_iter()
        .map(|m| (m.name.to_string(), m.generate(m.default_scale * 0.05)))
        .collect()
}

/// The degenerate shapes every backend must survive: empty, single vertex,
/// star, path, and a disconnected forest (isolated vertices + fragments).
fn degenerates() -> Vec<(String, CscMatrix)> {
    let star = {
        let n = 41;
        let mut b = CooBuilder::new(n, n);
        for v in 1..n as Vidx {
            b.push_sym(0, v);
        }
        b.build()
    };
    let path = {
        let n = 37;
        let mut b = CooBuilder::new(n, n);
        for v in 0..(n - 1) as Vidx {
            b.push_sym(v, v + 1);
        }
        b.build()
    };
    let forest = {
        // 30 vertices: a 7-path, a 5-star, two 2-edges, and isolated rest.
        let mut b = CooBuilder::new(30, 30);
        for v in 0..6u32 {
            b.push_sym(v, v + 1);
        }
        for v in 8..12u32 {
            b.push_sym(7, v);
        }
        b.push_sym(13, 14);
        b.push_sym(16, 15);
        b.build()
    };
    vec![
        ("empty".to_string(), CscMatrix::empty(0)),
        ("single-vertex".to_string(), CscMatrix::empty(1)),
        ("star".to_string(), star),
        ("path".to_string(), path),
        ("forest".to_string(), forest),
    ]
}

/// The suite-level acceptance check of the `RcmRuntime` refactor: serial ==
/// pooled == dist == hybrid, bit for bit, on every suite graph and every
/// degenerate. The pooled sweep honors `RCM_THREADS` so CI exercises it at
/// several thread counts.
#[test]
fn all_four_backends_agree_bitwise_on_suite_and_degenerates() {
    let mut graphs = tiny_suite();
    graphs.extend(degenerates());
    for (name, a) in graphs {
        // The classical George–Liu serial ordering is the ground truth the
        // algebraic formulation provably matches.
        let expect = rcm(&a);
        assert_eq!(
            rcm_with_backend(&a, BackendKind::Serial),
            expect,
            "{name}: serial backend vs classical"
        );
        for threads in thread_counts_from_env(&[1, 3]) {
            assert_eq!(
                rcm_with_backend(&a, BackendKind::Pooled { threads }),
                expect,
                "{name}: pooled backend diverged at {threads} threads"
            );
        }
        for cores in [1usize, 4, 9] {
            assert_eq!(
                rcm_with_backend(&a, BackendKind::Dist { cores }),
                expect,
                "{name}: dist backend diverged on {cores} ranks"
            );
        }
        for (cores, threads_per_proc) in [(24usize, 6usize), (54, 6)] {
            assert_eq!(
                rcm_with_backend(
                    &a,
                    BackendKind::Hybrid {
                        cores,
                        threads_per_proc
                    }
                ),
                expect,
                "{name}: hybrid backend diverged at {cores} cores x {threads_per_proc} threads"
            );
        }
    }
}

#[test]
fn shared_backend_is_thread_count_independent_on_suite_classes() {
    // The acceptance sweep: bit-identical to the algebraic ordering at
    // every Table II thread count, on a graph large enough that interior
    // frontiers take the work-stealing parallel path.
    let m = distributed_rcm::graphgen::suite_matrix("ldoor").unwrap();
    let a = m.generate(m.default_scale * 0.5);
    let (expect, _) = algebraic_rcm(&a);
    for threads in [1usize, 2, 4, 8, 16] {
        let (got, stats) = par_rcm(&a, threads);
        assert_eq!(got, expect, "ldoor diverged at {threads} threads");
        if threads > 1 {
            assert!(
                stats.parallel_levels > 0,
                "{threads} threads never exercised the parallel pipeline"
            );
        }
    }
}

#[test]
fn hybrid_and_flat_share_the_data_path_at_every_scale() {
    // Fig. 6's sweep axis: for a fixed process grid, the thread count only
    // rescales compute cost — the permutation and the communication volume
    // must be unchanged.
    let m = distributed_rcm::graphgen::suite_matrix("nd24k").unwrap();
    let a = m.generate(m.default_scale * 0.1);
    let flat = dist_rcm(&a, &DistRcmConfig::flat_on_edison(16));
    for threads in [2usize, 6, 12] {
        let cfg = DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(16 * threads, threads),
            balance_seed: None,
            sort_mode: SortMode::Full,
            direction: ExpandDirection::from_env(),
            start_node: StartNode::GeorgeLiu,
        };
        let hybrid = dist_rcm(&a, &cfg);
        assert_eq!(hybrid.perm, flat.perm, "{threads} threads/proc diverged");
        assert_eq!(hybrid.grid_side, flat.grid_side);
        assert_eq!(hybrid.messages, flat.messages);
        assert_eq!(hybrid.bytes, flat.bytes);
        assert!(
            hybrid.breakdown.compute_total() < flat.breakdown.compute_total(),
            "{threads} threads/proc must cut modeled compute"
        );
    }
}

#[test]
fn load_balance_permutation_keeps_quality() {
    for (name, a) in tiny_suite() {
        let baseline = {
            let p = rcm(&a);
            ordering_bandwidth(&a, &p)
        };
        let cfg = DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(4, 1),
            balance_seed: Some(42),
            sort_mode: SortMode::Full,
            direction: ExpandDirection::from_env(),
            start_node: StartNode::GeorgeLiu,
        };
        let r = dist_rcm(&a, &cfg);
        let bw = ordering_bandwidth(&a, &r.perm);
        // Internal relabeling may shift tie-breaks; allow a modest band.
        assert!(
            bw as f64 <= baseline as f64 * 1.5 + 16.0,
            "{name}: balanced bandwidth {bw} vs baseline {baseline}"
        );
    }
}

#[test]
fn rcm_quality_direction_matches_paper() {
    // The paper's Fig. 3: RCM helps a lot on the FEM classes, and is nearly
    // a no-op on Serena/Flan-like and CI-like matrices.
    for (name, a) in tiny_suite() {
        let p = rcm(&a);
        let q = quality_report(&a, &p);
        assert!(
            q.bandwidth_after <= q.bandwidth_before,
            "{name}: RCM must not worsen the bandwidth ({} -> {})",
            q.bandwidth_before,
            q.bandwidth_after
        );
        // audikw/dielFilter shrink to ~6³ cubes at test scale, where the
        // bandwidth floor (a cube face × 3 dofs) caps the reduction factor;
        // check the strong-reduction claim on classes that keep shape.
        if matches!(name.as_str(), "ldoor" | "thermal2" | "nlpkkt240") {
            assert!(
                q.bandwidth_after * 3 < q.bandwidth_before,
                "{name}: expected a strong reduction, got {} -> {}",
                q.bandwidth_before,
                q.bandwidth_after
            );
        }
    }
}

#[test]
fn permutations_are_bijections_with_reversal_symmetry() {
    for (name, a) in tiny_suite() {
        let (cm, _) = distributed_rcm::core::cuthill_mckee(&a);
        let rcm_p = rcm(&a);
        assert_eq!(cm.reversed(), rcm_p, "{name}: RCM must reverse CM");
        assert_eq!(
            cm.then(&cm.inverse()),
            Permutation::identity(a.n_rows()),
            "{name}: not a bijection"
        );
    }
}
