//! Start-node strategy equivalence tests: every [`StartNode`] strategy must
//! return a valid in-component start vertex on degenerate shapes (empty,
//! isolated vertices, star, path, forest) and produce a deterministic
//! ordering — bit-identical across all four backends at every
//! `RCM_THREADS` count. CI sweeps this file under
//! `RCM_START_NODE=george-liu|bi-criteria|min-degree` (the engine default
//! is env-derived, so the sweep exercises the env path too) and
//! `RCM_THREADS=1,2,8`.

use distributed_rcm::core::thread_counts_from_env;
use distributed_rcm::graphgen::forest;
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::Vidx;
use proptest::prelude::*;

/// Serial + pooled (at every `RCM_THREADS` count) + dist + hybrid.
fn all_kinds() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Serial];
    for &t in &thread_counts_from_env(&[1, 2, 8]) {
        kinds.push(BackendKind::Pooled { threads: t });
    }
    kinds.push(BackendKind::Dist { cores: 16 });
    kinds.push(BackendKind::Hybrid {
        cores: 24,
        threads_per_proc: 6,
    });
    kinds
}

/// The strategy set under test for an `n`-vertex matrix: the three
/// env-selectable strategies plus an in-range fixed vertex and an
/// out-of-range one (which must fall back to George–Liu, not panic).
fn strategies(n: usize) -> Vec<StartNode> {
    vec![
        StartNode::GeorgeLiu,
        StartNode::BiCriteria,
        StartNode::MinDegree,
        StartNode::Fixed((n / 2) as Vidx),
        StartNode::Fixed(n as Vidx + 7),
    ]
}

fn order_with(a: &CscMatrix, kind: BackendKind, strategy: StartNode) -> OrderingReport {
    let mut engine = OrderingEngine::new(
        EngineConfig::builder()
            .backend(kind)
            .start_node(strategy)
            .build(),
    );
    engine.order(a)
}

/// A valid run: the permutation is a bijection over all `n` vertices, one
/// peripheral record per component, and every recorded start vertex lies
/// in a distinct component (i.e. the strategy picked in-component).
fn assert_valid(a: &CscMatrix, report: &OrderingReport, label: &str) {
    let n = a.n_rows();
    assert_eq!(report.perm.len(), n, "{label}: permutation length");
    let comps = connected_components(a);
    assert_eq!(
        report.stats.peripheral_stats.len(),
        comps.count(),
        "{label}: one start-node record per component"
    );
    let mut seen: Vec<u32> = report
        .stats
        .peripheral_stats
        .iter()
        .map(|p| {
            assert!((p.start as usize) < n, "{label}: start out of range");
            comps.component_of[p.start as usize]
        })
        .collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len(),
        comps.count(),
        "{label}: every component got its own in-component start"
    );
}

fn degenerate_shapes() -> Vec<(&'static str, CscMatrix)> {
    let mut shapes = Vec::new();
    shapes.push(("empty", CooBuilder::new(0, 0).build()));
    shapes.push(("isolated", CooBuilder::new(5, 5).build()));
    let mut star = CooBuilder::new(8, 8);
    for leaf in 1..8 {
        star.push_sym(0, leaf as Vidx);
    }
    shapes.push(("star", star.build()));
    let mut path = CooBuilder::new(9, 9);
    for v in 0..8 {
        path.push_sym(v as Vidx, (v + 1) as Vidx);
    }
    shapes.push(("path", path.build()));
    shapes.push(("forest", forest(5, 7, 23)));
    shapes
}

#[test]
fn every_strategy_is_valid_and_deterministic_on_degenerate_shapes() {
    for (shape, a) in degenerate_shapes() {
        for strategy in strategies(a.n_rows()) {
            let reference = order_with(&a, BackendKind::Serial, strategy);
            assert_valid(&a, &reference, &format!("{shape}/{}", strategy.name()));
            for kind in all_kinds() {
                let report = order_with(&a, kind, strategy);
                assert_eq!(
                    report.perm,
                    reference.perm,
                    "{shape}: strategy {} diverged on {}",
                    strategy.name(),
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn zero_sweep_strategies_run_zero_sweeps() {
    let a = forest(4, 9, 5);
    let md = order_with(&a, BackendKind::Serial, StartNode::MinDegree);
    assert_eq!(
        md.peripheral_sweeps(),
        0,
        "min-degree must not run any BFS sweep"
    );
    // A fixed vertex zero-sweeps *its* component; the remaining components
    // fall back to the George–Liu search.
    let fixed = order_with(&a, BackendKind::Serial, StartNode::Fixed(0));
    assert_eq!(
        fixed.stats.peripheral_stats[0].sweeps, 0,
        "the fixed component must not run any BFS sweep"
    );
    assert_eq!(fixed.stats.peripheral_stats[0].start, 0);
    let gl = order_with(&a, BackendKind::Serial, StartNode::GeorgeLiu);
    assert!(gl.peripheral_sweeps() > 0);
    let bc = order_with(&a, BackendKind::Serial, StartNode::BiCriteria);
    assert!(bc.peripheral_sweeps() <= gl.peripheral_sweeps());
}

#[test]
fn fixed_vertex_labels_its_component_first() {
    // Two components: a path {0..4} and a triangle {5,6,7}. Fixing a
    // start inside the triangle must label that component first (highest
    // CM labels come last after the reversal, so the triangle holds the
    // *last* RCM labels... the invariant we pin is just: the triangle's
    // record comes first and starts at the fixed vertex).
    let mut b = CooBuilder::new(8, 8);
    for v in 0..4 {
        b.push_sym(v as Vidx, (v + 1) as Vidx);
    }
    b.push_sym(5, 6);
    b.push_sym(6, 7);
    b.push_sym(7, 5);
    let a = b.build();
    let report = order_with(&a, BackendKind::Serial, StartNode::Fixed(6));
    assert_eq!(report.stats.peripheral_stats[0].start, 6);
    for kind in all_kinds() {
        let r = order_with(&a, kind, StartNode::Fixed(6));
        assert_eq!(r.perm, report.perm, "fixed(6) diverged on {}", kind.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random forests (the adversarial multi-component shape) through
    /// every strategy on every backend: valid in-component starts and
    /// bit-identical orderings.
    #[test]
    fn strategies_agree_across_backends_on_random_forests(
        trees in 1usize..6,
        verts in 1usize..12,
        seed in 0u64..100,
    ) {
        let a = forest(trees, verts, seed);
        for strategy in strategies(a.n_rows()) {
            let reference = order_with(&a, BackendKind::Serial, strategy);
            assert_valid(&a, &reference, &format!("forest/{}", strategy.name()));
            for kind in all_kinds() {
                let report = order_with(&a, kind, strategy);
                prop_assert_eq!(
                    &report.perm,
                    &reference.perm,
                    "strategy {} diverged on {}",
                    strategy.name(),
                    kind.name()
                );
            }
        }
    }
}
