//! Integration tests of the Fig. 1 pipeline: RCM ordering improves
//! block-Jacobi CG both numerically (measured iterations) and in modeled
//! distributed time.

use distributed_rcm::prelude::*;
use distributed_rcm::solver::IdentityPrecond;
use distributed_rcm::sparse::CsrNumeric;

fn thermal_pattern() -> CscMatrix {
    let m = suite_matrix("thermal2").unwrap();
    m.generate(m.default_scale * 0.25)
}

fn rhs_for(a: &CsrNumeric) -> Vec<f64> {
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let mut b = vec![0.0; n];
    a.spmv(&x, &mut b);
    b
}

#[test]
fn rcm_reduces_bj_cg_iterations() {
    let pattern = thermal_pattern();
    let perm = rcm(&pattern);
    let reordered = pattern.permute_sym(&perm);
    let blocks = 16;
    let run = |pat: &CscMatrix| {
        let a = CsrNumeric::laplacian_from_pattern(pat, 0.02);
        let bj = BlockJacobi::new(&a, blocks);
        let res = pcg(&a, &rhs_for(&a), &bj, 1e-6, 50_000);
        assert!(res.converged);
        res.iterations
    };
    let natural = run(&pattern);
    let ordered = run(&reordered);
    assert!(
        ordered <= natural,
        "RCM should not hurt block-Jacobi: natural {natural} vs RCM {ordered}"
    );
}

#[test]
fn rcm_advantage_grows_with_cores() {
    // Fig. 1's key qualitative claim: the natural/RCM total-time ratio
    // increases with core count.
    let pattern = thermal_pattern();
    let perm = rcm(&pattern);
    let reordered = pattern.permute_sym(&perm);
    let machine = MachineModel::edison();
    let total = |pat: &CscMatrix, p: usize| {
        let a = CsrNumeric::laplacian_from_pattern(pat, 0.02);
        let bj = BlockJacobi::new(&a, p);
        let res = pcg(&a, &rhs_for(&a), &bj, 1e-6, 50_000);
        assert!(res.converged);
        res.iterations as f64 * cg_iteration_cost(pat, &machine, p, bj.factor_nnz()).total()
    };
    let ratio4 = total(&pattern, 4) / total(&reordered, 4);
    let ratio64 = total(&pattern, 64) / total(&reordered, 64);
    assert!(
        ratio4 >= 0.9,
        "RCM should roughly break even at 4 ranks: {ratio4:.2}"
    );
    assert!(
        ratio64 > ratio4,
        "the RCM advantage should grow with cores: {ratio4:.2} -> {ratio64:.2}"
    );
    assert!(
        ratio64 > 1.2,
        "RCM should win clearly at 64 ranks: {ratio64:.2}"
    );
}

#[test]
fn iteration_counts_are_ordering_invariant_without_preconditioning() {
    // Sanity check of the numerics: plain CG's iteration count depends only
    // on the spectrum, which a symmetric permutation preserves.
    let pattern = thermal_pattern();
    let perm = rcm(&pattern);
    let reordered = pattern.permute_sym(&perm);
    let run = |pat: &CscMatrix| {
        let a = CsrNumeric::laplacian_from_pattern(pat, 0.05);
        pcg(&a, &rhs_for(&a), &IdentityPrecond, 1e-6, 50_000).iterations
    };
    let natural = run(&pattern);
    let ordered = run(&reordered);
    // The RHS differs by the permutation, so tiny drift is acceptable.
    let diff = natural.abs_diff(ordered);
    assert!(
        diff <= natural / 10 + 5,
        "unpreconditioned CG should be ordering-insensitive: {natural} vs {ordered}"
    );
}
