//! Edge-case and failure-injection integration tests across the workspace:
//! the degenerate inputs a downstream user will eventually feed every API.

use distributed_rcm::core::{algebraic_rcm, dist_rcm, par_rcm, DistRcmConfig, SortMode};
use distributed_rcm::dist::{HybridConfig, MachineModel};
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::{connected_components, mm, spy};

fn dist_cfg(procs: usize) -> DistRcmConfig {
    DistRcmConfig {
        machine: MachineModel::edison(),
        hybrid: HybridConfig::new(procs, 1),
        balance_seed: None,
        sort_mode: SortMode::Full,
        direction: ExpandDirection::from_env(),
        start_node: StartNode::GeorgeLiu,
    }
}

#[test]
fn empty_matrix_all_pipelines() {
    let a = CscMatrix::empty(0);
    assert_eq!(rcm(&a).len(), 0);
    assert_eq!(algebraic_rcm(&a).0.len(), 0);
    assert_eq!(par_rcm(&a, 4).0.len(), 0);
    let r = dist_rcm(&a, &dist_cfg(1));
    assert_eq!(r.perm.len(), 0);
    assert_eq!(r.components, 0);
}

#[test]
fn single_vertex_all_pipelines() {
    let a = CscMatrix::empty(1);
    for p in [rcm(&a), algebraic_rcm(&a).0, par_rcm(&a, 2).0, sloan(&a)] {
        assert_eq!(p.len(), 1);
        assert_eq!(p.new_of(0), 0);
    }
    let r = dist_rcm(&a, &dist_cfg(4));
    assert_eq!(r.perm.len(), 1);
    assert_eq!(r.components, 1);
}

#[test]
fn all_isolated_vertices() {
    let a = CscMatrix::empty(9);
    let (expect, _) = algebraic_rcm(&a);
    for procs in [1usize, 4, 9] {
        let r = dist_rcm(&a, &dist_cfg(procs));
        assert_eq!(r.perm, expect, "{procs} ranks");
        assert_eq!(r.components, 9);
    }
    // Isolated vertices in min-degree order: vertex 0 first in CM → last in
    // RCM.
    assert_eq!(expect.new_of(0), 8);
}

#[test]
fn star_graph_hub_is_labeled_last_in_cm() {
    // Star: leaves have degree 1, the pseudo-peripheral search lands on a
    // leaf, the hub is its only child.
    let n = 50;
    let mut b = CooBuilder::new(n, n);
    for v in 1..n as u32 {
        b.push_sym(0, v);
    }
    let a = b.build();
    let perm = rcm(&a);
    let q = quality_report(&a, &perm);
    // A star cannot be banded: best achievable bandwidth is ~n/2.
    assert!(q.bandwidth_after >= (n - 1) / 2);
    assert!(q.bandwidth_after < n);
}

#[test]
fn complete_graph_any_order_is_equivalent() {
    let n = 20;
    let mut b = CooBuilder::new(n, n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.push_sym(u, v);
        }
    }
    let a = b.build();
    let perm = rcm(&a);
    let q = quality_report(&a, &perm);
    assert_eq!(q.bandwidth_after, n - 1); // dense stays dense
    assert_eq!(q.bandwidth_before, q.bandwidth_after);
}

#[test]
fn self_loops_are_tolerated() {
    let mut b = CooBuilder::new(6, 6);
    for v in 0..5u32 {
        b.push_sym(v, v + 1);
    }
    for v in 0..6u32 {
        b.push(v, v); // structural diagonal
    }
    let a = b.build();
    assert_eq!(a.nnz(), 16);
    let perm = rcm(&a);
    assert_eq!(ordering_bandwidth(&a, &perm), 1);
    let (alg, _) = algebraic_rcm(&a);
    assert_eq!(perm, alg);
}

#[test]
fn two_vertex_graph() {
    let mut b = CooBuilder::new(2, 2);
    b.push_sym(0, 1);
    let a = b.build();
    for procs in [1usize, 4] {
        let r = dist_rcm(&a, &dist_cfg(procs));
        assert_eq!(r.perm.len(), 2);
    }
    assert_eq!(ordering_bandwidth(&a, &rcm(&a)), 1);
}

#[test]
fn more_ranks_than_vertices() {
    // 16 ranks, 5 vertices: most ranks own nothing; everything must still
    // agree with the sequential result.
    let mut b = CooBuilder::new(5, 5);
    for v in 0..4u32 {
        b.push_sym(v, v + 1);
    }
    let a = b.build();
    let (expect, _) = algebraic_rcm(&a);
    let r = dist_rcm(&a, &dist_cfg(16));
    assert_eq!(r.perm, expect);
    let r25 = dist_rcm(&a, &dist_cfg(25));
    assert_eq!(r25.perm, expect);
}

#[test]
fn non_square_process_count_panics() {
    let a = CscMatrix::eye(4);
    let result = std::panic::catch_unwind(|| dist_rcm(&a, &dist_cfg(12)));
    assert!(result.is_err(), "12 ranks is not a square grid");
}

#[test]
fn mm_reader_rejects_garbage_gracefully() {
    assert!(mm::read_pattern("not a matrix".as_bytes()).is_err());
    assert!(
        mm::read_pattern("%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes())
            .is_err()
    );
    assert!(mm::read_pattern_file("/nonexistent/path.mtx").is_err());
}

#[test]
fn spy_plot_of_every_suite_matrix_renders() {
    for m in distributed_rcm::graphgen::suite() {
        let a = m.generate(m.default_scale * 0.05);
        let plot = spy(&a, 16);
        assert!(plot.lines().count() >= 18, "{}", m.name);
    }
}

#[test]
fn components_match_driver_component_count() {
    let mut b = CooBuilder::new(40, 40);
    for v in 0..10u32 {
        b.push_sym(v * 4, v * 4 + 1);
        b.push_sym(v * 4 + 1, v * 4 + 2);
    }
    let a = b.build();
    let comps = connected_components(&a);
    let r = dist_rcm(&a, &dist_cfg(4));
    assert_eq!(r.components, comps.count());
}

#[test]
fn sort_modes_agree_where_they_must() {
    // Full and GeneralSamplesort implement the same specification; their
    // outputs must be identical (only the charged time differs).
    let mut b = CooBuilder::new(30, 30);
    for v in 0..29u32 {
        b.push_sym(v, v + 1);
        if v % 3 == 0 && v + 3 < 30 {
            b.push_sym(v, v + 3);
        }
    }
    let a = b.build();
    let mut full = dist_cfg(9);
    full.sort_mode = SortMode::Full;
    let mut sample = dist_cfg(9);
    sample.sort_mode = SortMode::GeneralSamplesort;
    let rf = dist_rcm(&a, &full);
    let rs = dist_rcm(&a, &sample);
    assert_eq!(rf.perm, rs.perm);
    assert!(
        rs.sim_seconds >= rf.sim_seconds,
        "general sort should not be cheaper: {} vs {}",
        rs.sim_seconds,
        rf.sim_seconds
    );
}

#[test]
fn level_stats_sum_to_vertex_count() {
    let m = suite_matrix("Serena").unwrap();
    let a = m.generate(m.default_scale * 0.1);
    let r = dist_rcm(&a, &dist_cfg(4));
    let labeled: usize = r.level_stats.iter().map(|l| l.frontier).sum();
    // Every vertex except the per-component roots is labeled by a level.
    assert_eq!(labeled + r.components, a.n_rows());
    assert!(r.level_stats.iter().all(|l| l.seconds >= 0.0));
}
