//! End-to-end tests of the `rcm-order` command-line binary.

use std::process::Command;

fn rcm_order() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcm-order"))
}

#[test]
fn orders_a_suite_matrix_and_writes_outputs() {
    let dir = std::env::temp_dir().join("rcm-order-test");
    std::fs::create_dir_all(&dir).unwrap();
    let perm_path = dir.join("perm.txt");
    let mtx_path = dir.join("reordered.mtx");
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--write-perm",
            perm_path.to_str().unwrap(),
            "--write-matrix",
            mtx_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bandwidth:"), "{stdout}");

    // The permutation file is a bijection.
    let text = std::fs::read_to_string(&perm_path).unwrap();
    let labels: Vec<usize> = text.lines().map(|l| l.parse().unwrap()).collect();
    let n = labels.len();
    let mut seen = vec![false; n];
    for &l in &labels {
        assert!(l < n && !seen[l]);
        seen[l] = true;
    }

    // The reordered matrix reads back with the same size.
    let m = distributed_rcm::sparse::mm::read_pattern_file(&mtx_path).unwrap();
    assert_eq!(m.n_rows(), n);
}

#[test]
fn sloan_method_and_simulation_run() {
    let out = rcm_order()
        .args([
            "suite:thermal2",
            "--scale",
            "0.002",
            "--method",
            "sloan",
            "--simulate",
            "1,16",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sloan ordering computed"));
    assert!(stdout.contains("simulated distributed RCM"));
}

#[test]
fn unknown_matrix_fails_cleanly() {
    let out = rcm_order().args(["suite:doesnotexist"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn backend_flag_selects_each_runtime() {
    // Every backend computes the bit-identical ordering, so the reported
    // bandwidth must not depend on the choice.
    let mut bandwidth_lines: Vec<String> = Vec::new();
    for backend in ["serial", "pooled", "dist", "hybrid"] {
        let out = rcm_order()
            .args(["suite:nd24k", "--scale", "0.005", "--backend", backend])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--backend {backend} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("on the {backend} backend")),
            "--backend {backend} not reported: {stdout}"
        );
        bandwidth_lines.extend(
            stdout
                .lines()
                .filter(|l| l.contains("bandwidth:"))
                .map(str::to_string),
        );
    }
    assert_eq!(bandwidth_lines.len(), 4);
    assert!(
        bandwidth_lines.iter().all(|l| l == &bandwidth_lines[0]),
        "backends disagreed: {bandwidth_lines:?}"
    );
}

#[test]
fn unknown_backend_exits_2_naming_the_valid_set() {
    let out = rcm_order()
        .args(["suite:nd24k", "--scale", "0.005", "--backend", "gpu"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gpu"), "{stderr}");
    assert!(stderr.contains("serial|pooled|dist|hybrid"), "{stderr}");
}

#[test]
fn backend_flag_rejects_non_rcm_methods() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--method",
            "sloan",
            "--backend",
            "pooled",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--backend applies only to --method rcm"),
        "{stderr}"
    );
}

#[test]
fn multiple_inputs_order_through_one_warm_engine() {
    let dir = std::env::temp_dir().join("rcm-order-test-multi");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("a.mtx");
    let path_b = dir.join("b.mtx");
    std::fs::write(
        &path_a,
        "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 4\n2 1\n3 2\n4 3\n5 4\n",
    )
    .unwrap();
    std::fs::write(
        &path_b,
        "%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n2 1\n3 2\n4 3\n",
    )
    .unwrap();
    let out = rcm_order()
        .args([path_a.to_str().unwrap(), path_b.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("5 rows"), "{stdout}");
    assert!(stdout.contains("4 rows"), "{stdout}");
    assert_eq!(
        stdout.matches("bandwidth:").count(),
        2,
        "one report per input: {stdout}"
    );
    assert_eq!(stdout.matches("warm engine").count(), 2, "{stdout}");
}

#[test]
fn cache_flag_reports_per_file_hit_miss_and_totals() {
    let dir = std::env::temp_dir().join("rcm-order-test-cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("a.mtx");
    let path_b = dir.join("b.mtx");
    let pattern = "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 4\n2 1\n3 2\n4 3\n5 4\n";
    std::fs::write(&path_a, pattern).unwrap();
    // Same pattern under a different file name: the second ordering must be
    // served from the cache.
    std::fs::write(&path_b, pattern).unwrap();
    let out = rcm_order()
        .args([
            path_a.to_str().unwrap(),
            path_b.to_str().unwrap(),
            path_a.to_str().unwrap(),
            "--cache",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("cache miss").count(), 1, "{stdout}");
    assert_eq!(stdout.matches("cache hit").count(), 2, "{stdout}");
    assert!(
        stdout.contains("cache: 2 hits, 1 misses"),
        "multi-input runs must print cache totals: {stdout}"
    );
    // All three reports describe the bit-identical ordering.
    let bandwidth_lines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("bandwidth:"))
        .collect();
    assert_eq!(bandwidth_lines.len(), 3);
    assert!(bandwidth_lines.iter().all(|l| l == &bandwidth_lines[0]));
}

#[test]
fn cache_flag_without_repeats_reports_only_misses() {
    let out = rcm_order()
        .args(["suite:nd24k", "--scale", "0.005", "--cache"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache miss"), "{stdout}");
    // Single input: no totals line.
    assert!(!stdout.contains("cache:"), "{stdout}");
}

#[test]
fn cache_flag_rejects_non_rcm_methods() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--method",
            "sloan",
            "--cache",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--cache applies only to --method rcm"),
        "{stderr}"
    );
}

#[test]
fn cache_flag_with_bad_input_still_exits_2_naming_it() {
    let dir = std::env::temp_dir().join("rcm-order-test-cachebad");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("fine.mtx");
    std::fs::write(
        &good,
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n",
    )
    .unwrap();
    let bad = dir.join("corrupt.mtx");
    std::fs::write(&bad, "still not a matrix\n").unwrap();
    let out = rcm_order()
        .args([good.to_str().unwrap(), bad.to_str().unwrap(), "--cache"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt.mtx"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("bandwidth:"), "{stdout}");
}

#[test]
fn first_bad_input_of_many_exits_2_naming_it() {
    let dir = std::env::temp_dir().join("rcm-order-test-multibad");
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.mtx");
    std::fs::write(
        &good,
        "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n",
    )
    .unwrap();
    let bad = dir.join("broken.mtx");
    std::fs::write(&bad, "not a matrix\n").unwrap();
    // The bad file comes second; nothing should be ordered and the exit
    // code must still be 2, naming the broken file.
    let out = rcm_order()
        .args([good.to_str().unwrap(), bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.mtx"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("bandwidth:"),
        "no input may be ordered when one is bad: {stdout}"
    );
}

#[test]
fn threads_flag_drives_the_pooled_backend() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--backend",
            "pooled",
            "--threads",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("on the pooled backend"), "{stdout}");
}

#[test]
fn compress_flag_reports_compression_stats() {
    let dir = std::env::temp_dir().join("rcm-order-test-compress");
    std::fs::create_dir_all(&dir).unwrap();
    let perm_path = dir.join("perm.txt");
    // ldoor's stand-in is a 2-dof FEM shape: it must actually compress.
    let out = rcm_order()
        .args([
            "suite:ldoor",
            "--scale",
            "0.002",
            "--compress",
            "--write-perm",
            perm_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compression:"), "{stdout}");
    assert!(stdout.contains("supervariables"), "{stdout}");
    // The expanded permutation is still a bijection.
    let text = std::fs::read_to_string(&perm_path).unwrap();
    let labels: Vec<usize> = text.lines().map(|l| l.parse().unwrap()).collect();
    let mut seen = vec![false; labels.len()];
    for &l in &labels {
        assert!(l < labels.len() && !seen[l]);
        seen[l] = true;
    }
}

#[test]
fn compress_flag_rejects_backend_selection() {
    // The compression path orders the quotient sequentially; silently
    // accepting --backend would misreport what ran.
    let out = rcm_order()
        .args([
            "suite:ldoor",
            "--scale",
            "0.002",
            "--compress",
            "--backend",
            "pooled",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--compress does not compose with --backend"),
        "{stderr}"
    );
}

#[test]
fn compress_flag_rejects_non_rcm_methods() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--method",
            "sloan",
            "--compress",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--compress applies only to --method rcm"),
        "{stderr}"
    );
}

#[test]
fn write_perm_rejects_multiple_inputs() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "suite:ldoor",
            "--scale",
            "0.005",
            "--write-perm",
            "/tmp/never-written.txt",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("single input"), "{stderr}");
}

#[test]
fn bad_flags_exit_with_usage() {
    let out = rcm_order().args(["--bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_mtx_file_exits_2_naming_the_file() {
    let out = rcm_order()
        .args(["/nonexistent/input.mtx"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("/nonexistent/input.mtx"), "{stderr}");
}

#[test]
fn malformed_mtx_file_exits_2_naming_the_file() {
    let dir = std::env::temp_dir().join("rcm-order-test-badmm");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("garbage.mtx");
    std::fs::write(&input, "this is not a matrix market file\n").unwrap();
    let out = rcm_order().arg(input.to_str().unwrap()).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "malformed input must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("garbage.mtx"), "{stderr}");
}

#[test]
fn reads_matrix_market_files() {
    let dir = std::env::temp_dir().join("rcm-order-test-mm");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("input.mtx");
    std::fs::write(
        &input,
        "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 4\n2 1\n3 2\n4 3\n5 4\n",
    )
    .unwrap();
    let out = rcm_order().arg(input.to_str().unwrap()).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("5 rows"), "{stdout}");
}

#[test]
fn split_components_flag_matches_the_plain_run_and_reports_components() {
    // Two disjoint 4-vertex paths, interleaved ids: {1,3,5,7} and {2,4,6,8}
    // in 1-based Matrix Market numbering.
    let dir = std::env::temp_dir().join("rcm-order-test-split");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("two-paths.mtx");
    std::fs::write(
        &input,
        "%%MatrixMarket matrix coordinate pattern symmetric\n\
         8 8 6\n3 1\n5 3\n7 5\n4 2\n6 4\n8 6\n",
    )
    .unwrap();
    let perm_plain = dir.join("plain.txt");
    let perm_split = dir.join("split.txt");
    let plain = rcm_order()
        .args([
            input.to_str().unwrap(),
            "--write-perm",
            perm_plain.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        plain.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&plain.stderr)
    );
    let split = rcm_order()
        .args([
            input.to_str().unwrap(),
            "--split-components",
            "--write-perm",
            perm_split.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        split.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&split.stderr)
    );
    let stdout = String::from_utf8_lossy(&split.stdout);
    assert!(
        stdout.contains("components: 2 (scheduled as independent jobs)"),
        "{stdout}"
    );
    // The split ordering is bit-identical to the whole-matrix driver.
    assert_eq!(
        std::fs::read_to_string(&perm_plain).unwrap(),
        std::fs::read_to_string(&perm_split).unwrap()
    );
}

#[test]
fn split_components_flag_composes_with_every_backend() {
    for backend in ["serial", "pooled", "dist", "hybrid"] {
        let out = rcm_order()
            .args([
                "suite:nd24k",
                "--scale",
                "0.005",
                "--split-components",
                "--backend",
                backend,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "backend {backend} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("components:"), "{backend}: {stdout}");
    }
}

#[test]
fn split_components_flag_rejects_non_rcm_methods() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--method",
            "sloan",
            "--split-components",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--split-components applies only to --method rcm"),
        "{stderr}"
    );
}

#[test]
fn split_components_flag_rejects_compress() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--compress",
            "--split-components",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--split-components does not compose with --compress"),
        "{stderr}"
    );
}

#[test]
fn start_node_flag_reports_the_peripheral_phase() {
    for strategy in ["george-liu", "bi-criteria", "min-degree", "fixed:0"] {
        let out = rcm_order()
            .args(["suite:nd24k", "--scale", "0.005", "--start-node", strategy])
            .output()
            .unwrap();
        assert!(out.status.success(), "{strategy} failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("peripheral:"),
            "{strategy}: missing peripheral summary line\n{stdout}"
        );
        let expected = strategy.split(':').next().unwrap();
        assert!(
            stdout.contains(&format!("{expected} strategy")),
            "{strategy}: summary does not name the strategy\n{stdout}"
        );
        if strategy == "min-degree" || strategy == "fixed:0" {
            assert!(
                stdout.contains("0 sweep(s)"),
                "{strategy}: zero-sweep strategy reported sweeps\n{stdout}"
            );
        }
    }
}

#[test]
fn start_node_strategies_produce_identical_or_valid_orderings_per_backend() {
    // Per-strategy determinism end to end: the same strategy on every
    // backend must write the identical permutation.
    let dir = std::env::temp_dir().join("rcm-order-test-startnode");
    std::fs::create_dir_all(&dir).unwrap();
    for strategy in ["bi-criteria", "min-degree"] {
        let mut perms = Vec::new();
        for backend in ["serial", "pooled", "dist", "hybrid"] {
            let perm_path = dir.join(format!("{strategy}-{backend}.txt"));
            let out = rcm_order()
                .args([
                    "suite:nd24k",
                    "--scale",
                    "0.005",
                    "--start-node",
                    strategy,
                    "--backend",
                    backend,
                    "--write-perm",
                    perm_path.to_str().unwrap(),
                ])
                .output()
                .unwrap();
            assert!(out.status.success(), "{strategy} on {backend} failed");
            perms.push(std::fs::read_to_string(&perm_path).unwrap());
        }
        assert!(
            perms.windows(2).all(|w| w[0] == w[1]),
            "{strategy}: backends disagree"
        );
    }
}

#[test]
fn start_node_flag_rejects_bad_specs_and_non_rcm_methods() {
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--start-node",
            "centroid",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown start-node strategy centroid"),
        "{stderr}"
    );
    let out = rcm_order()
        .args([
            "suite:nd24k",
            "--scale",
            "0.005",
            "--method",
            "sloan",
            "--start-node",
            "bi-criteria",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--start-node applies only to --method rcm"),
        "{stderr}"
    );
}
