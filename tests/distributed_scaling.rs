//! Integration tests of the distributed simulation's *performance shape* —
//! the qualitative claims of the paper's §V that the reproduction must hold:
//!
//! * compute shrinks and communication grows with core count,
//! * SpMSpV dominates at low concurrency, sorting latency at high
//!   concurrency (Fig. 4),
//! * communication overtakes computation inside SpMSpV as p grows (Fig. 5),
//! * flat MPI is slower than hybrid at scale (Fig. 6),
//! * high-diameter matrices stop scaling earlier than low-diameter ones.

use distributed_rcm::core::{dist_rcm, DistRcmConfig, ExpandDirection};
use distributed_rcm::dist::Phase;
use distributed_rcm::graphgen::suite_matrix;

#[test]
fn communication_grows_and_compute_shrinks_with_cores() {
    let m = suite_matrix("Serena").unwrap();
    let a = m.generate(m.default_scale * 0.2);
    let r24 = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(24));
    let r216 = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(216));
    assert!(r216.breakdown.compute_total() < r24.breakdown.compute_total());
    assert!(r216.breakdown.comm_total() > r24.breakdown.comm_total());
}

#[test]
fn spmspv_communication_fraction_increases_with_cores() {
    let m = suite_matrix("ldoor").unwrap();
    let a = m.generate(m.default_scale * 0.2);
    let frac = |cores: usize| {
        let r = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(cores));
        let s = r.breakdown.spmspv_split();
        s.comm / s.total()
    };
    let f24 = frac(24);
    let f1014 = frac(1014);
    assert!(
        f1014 > f24,
        "SpMSpV comm fraction should grow: {f24:.3} -> {f1014:.3}"
    );
    // At ~1K cores on a (scaled-down) high-diameter matrix the paper shows
    // communication dominating.
    assert!(
        f1014 > 0.5,
        "expected comm-bound SpMSpV at 1K cores: {f1014:.3}"
    );
}

#[test]
fn sorting_latency_dominates_at_high_concurrency() {
    let m = suite_matrix("ldoor").unwrap();
    let a = m.generate(m.default_scale * 0.2);
    let r = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(4056));
    let sort = r.breakdown.get(Phase::OrderingSort).total();
    let spmspv = r.breakdown.get(Phase::OrderingSpmspv).total();
    // Fig. 4: "SORTPERM starts to dominate on high concurrency because it
    // performs an AllToAll among all processes".
    assert!(
        sort > spmspv,
        "at 4056 cores sorting ({sort:.4}s) should outweigh ordering SpMSpV ({spmspv:.4}s)"
    );
}

#[test]
fn flat_mpi_slower_than_hybrid_at_scale() {
    let m = suite_matrix("ldoor").unwrap();
    let a = m.generate(m.default_scale * 0.2);
    let flat = dist_rcm(&a, &DistRcmConfig::flat_on_edison(1024));
    let hybrid = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(1014));
    assert!(
        flat.sim_seconds > hybrid.sim_seconds * 1.5,
        "flat {:.4}s vs hybrid {:.4}s — paper reports ~5x at 4096 cores",
        flat.sim_seconds,
        hybrid.sim_seconds
    );
}

#[test]
fn low_diameter_matrix_scales_further_than_high_diameter() {
    // Li7Nmax6 (diameter ~7) vs ldoor (high diameter): compare the speedup
    // still available when moving from 216 to 1014 cores.
    let gain = |name: &str| {
        let m = suite_matrix(name).unwrap();
        let a = m.generate(m.default_scale * 0.2);
        let t216 = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(216)).sim_seconds;
        let t1014 = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(1014)).sim_seconds;
        t216 / t1014
    };
    let li7 = gain("Li7Nmax6");
    let ldoor = gain("ldoor");
    assert!(
        li7 > ldoor,
        "low-diameter should keep scaling: Li7 {li7:.2}x vs ldoor {ldoor:.2}x"
    );
}

#[test]
fn single_core_run_has_zero_communication() {
    let m = suite_matrix("nd24k").unwrap();
    let a = m.generate(m.default_scale * 0.2);
    let r = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(1));
    assert_eq!(r.breakdown.comm_total(), 0.0);
    assert_eq!(r.messages, 0);
    assert_eq!(r.grid_side, 1);
}

#[test]
fn speedup_at_1024_cores_is_substantial() {
    // §V-D headline: up to 38x on 1024 cores. At reduced scale we just check
    // the sweep achieves a healthy double-digit speedup for a low-diameter
    // matrix. The paper's measurement is of the push-only algorithm, so pin
    // the direction: the adaptive pull layer shrinks the 1-core baseline
    // (cheap masked row-scans on Li7's fat frontiers), which compresses
    // this ratio — that effect is reported by `repro direction` instead.
    let m = suite_matrix("Li7Nmax6").unwrap();
    let a = m.generate(m.default_scale * 0.5);
    let mut cfg1 = DistRcmConfig::hybrid_on_edison(1);
    cfg1.direction = ExpandDirection::Push;
    let mut cfg1014 = DistRcmConfig::hybrid_on_edison(1014);
    cfg1014.direction = ExpandDirection::Push;
    let t1 = dist_rcm(&a, &cfg1).sim_seconds;
    let t1014 = dist_rcm(&a, &cfg1014).sim_seconds;
    let speedup = t1 / t1014;
    assert!(
        speedup > 8.0,
        "expected a substantial speedup at 1014 cores, got {speedup:.1}x"
    );
}
