//! Direction-optimizing frontier layer: forced push, forced pull, adaptive,
//! and the alternating policy (which forces a direction *switch at every
//! level boundary*) must all produce the bit-identical permutation on all
//! four backends — the tentpole invariant of the dual sparse/dense frontier
//! representation.

use distributed_rcm::core::{
    algebraic_rcm_directed, dist_rcm, par_rcm_directed, rcm_with_backend_directed,
    thread_counts_from_env, BackendKind, DistRcmConfig, ExpandDirection,
};
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::Vidx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const POLICIES: [ExpandDirection; 4] = [
    ExpandDirection::Push,
    ExpandDirection::Pull,
    ExpandDirection::Adaptive,
    ExpandDirection::Alternating,
];

/// Random symmetric graph from a seed: n vertices, ~avg_deg·n/2 edges.
fn random_graph(n: usize, avg_deg: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::new(n, n);
    for _ in 0..(n * avg_deg / 2) {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u != v {
            b.push_sym(u, v);
        }
    }
    b.build()
}

/// Assert every `(policy, backend)` combination reproduces the serial push
/// ordering on `a`. The pooled sweep honors `RCM_THREADS` so CI exercises
/// it at several thread counts.
fn assert_all_directions_agree(name: &str, a: &CscMatrix) {
    let expect = rcm_with_backend_directed(a, BackendKind::Serial, ExpandDirection::Push);
    for policy in POLICIES {
        let mut kinds = vec![BackendKind::Serial];
        kinds.extend(
            thread_counts_from_env(&[1, 3])
                .into_iter()
                .map(|threads| BackendKind::Pooled { threads }),
        );
        kinds.push(BackendKind::Dist { cores: 4 });
        kinds.push(BackendKind::Hybrid {
            cores: 24,
            threads_per_proc: 6,
        });
        for kind in kinds {
            assert_eq!(
                rcm_with_backend_directed(a, kind, policy),
                expect,
                "{name}: {} backend diverged under {} policy",
                kind.name(),
                policy.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The alternating policy switches direction at *every* level boundary,
    /// so each random graph round-trips the sparse ↔ dense representation
    /// on every consecutive level pair — and still matches push-only,
    /// pull-only and adaptive bit for bit on all four backends.
    #[test]
    fn forced_switches_keep_all_backends_bit_identical(
        n in 2usize..100, deg in 1usize..8, seed in 0u64..500
    ) {
        let a = random_graph(n, deg, seed);
        let serial_push =
            rcm_with_backend_directed(&a, BackendKind::Serial, ExpandDirection::Push);
        for policy in POLICIES {
            let (serial, sstats) = algebraic_rcm_directed(&a, policy);
            prop_assert_eq!(&serial, &serial_push, "serial {} diverged", policy.name());
            if policy == ExpandDirection::Alternating && sstats.push_expands > 0 {
                // The whole point of the policy: both directions ran.
                prop_assert!(
                    sstats.pull_expands > 0,
                    "alternating never pulled ({} expansions)",
                    sstats.push_expands
                );
            }
            for threads in thread_counts_from_env(&[2]) {
                let (pooled, _) = par_rcm_directed(&a, threads, policy);
                prop_assert_eq!(
                    &pooled, &serial_push,
                    "pooled({}) {} diverged", threads, policy.name()
                );
            }
            let mut cfg = DistRcmConfig::flat_on_edison(4);
            cfg.direction = policy;
            let dist = dist_rcm(&a, &cfg);
            prop_assert_eq!(&dist.perm, &serial_push, "dist {} diverged", policy.name());
            let mut hcfg = DistRcmConfig::hybrid_on_edison(24);
            hcfg.direction = policy;
            let hybrid = dist_rcm(&a, &hcfg);
            prop_assert_eq!(&hybrid.perm, &serial_push, "hybrid {} diverged", policy.name());
        }
    }

    /// Forced pull must actually pull (and forced push must not) — guards
    /// against a fallback silently routing everything through one kernel.
    #[test]
    fn forced_modes_use_their_kernel(n in 4usize..60, deg in 1usize..6, seed in 0u64..200) {
        let a = random_graph(n, deg, seed);
        let (_, push_stats) = algebraic_rcm_directed(&a, ExpandDirection::Push);
        prop_assert_eq!(push_stats.pull_expands, 0);
        prop_assert!(push_stats.push_expands > 0);
        let (_, pull_stats) = algebraic_rcm_directed(&a, ExpandDirection::Pull);
        prop_assert_eq!(pull_stats.push_expands, 0);
        prop_assert!(pull_stats.pull_expands > 0);
    }
}

/// The degenerate shapes every backend must survive under every policy:
/// empty, single vertex, star (one giant pull level), path (hundreds of
/// singleton frontiers), and a disconnected forest whose pull masks span
/// not-yet-ordered components.
#[test]
fn degenerates_agree_under_every_direction() {
    let star = {
        let n = 41;
        let mut b = CooBuilder::new(n, n);
        for v in 1..n as Vidx {
            b.push_sym(0, v);
        }
        b.build()
    };
    let path = {
        let n = 37;
        let mut b = CooBuilder::new(n, n);
        for v in 0..(n - 1) as Vidx {
            b.push_sym(v, v + 1);
        }
        b.build()
    };
    let forest = {
        // 30 vertices: a 7-path, a 5-star, two 2-edges, and isolated rest.
        let mut b = CooBuilder::new(30, 30);
        for v in 0..6u32 {
            b.push_sym(v, v + 1);
        }
        for v in 8..12u32 {
            b.push_sym(7, v);
        }
        b.push_sym(13, 14);
        b.push_sym(16, 15);
        b.build()
    };
    for (name, a) in [
        ("empty", CscMatrix::empty(0)),
        ("single-vertex", CscMatrix::empty(1)),
        ("star", star),
        ("path", path),
        ("forest", forest),
    ] {
        assert_all_directions_agree(name, &a);
    }
}

/// Suite classes under every policy — the wide-frontier FEM shapes are
/// where adaptive actually engages its pull levels.
#[test]
fn suite_classes_agree_under_every_direction() {
    for m in distributed_rcm::graphgen::suite() {
        let a = m.generate(m.default_scale * 0.05);
        assert_all_directions_agree(m.name, &a);
    }
}

/// A wide-level caterpillar pushes the pooled backend's *parallel* pull
/// pipeline (frontiers above the sequential cutover) through a forced
/// switch at every level, at every `RCM_THREADS` count.
#[test]
fn parallel_pull_pipeline_is_bit_identical_above_the_cutover() {
    let (hubs, leaves) = (10usize, 300usize);
    let n = hubs * (leaves + 1);
    let mut b = CooBuilder::new(n, n);
    for h in 0..hubs {
        let hub = (h * (leaves + 1)) as Vidx;
        if h + 1 < hubs {
            b.push_sym(hub, hub + (leaves + 1) as Vidx);
        }
        for l in 1..=leaves {
            b.push_sym(hub, hub + l as Vidx);
        }
    }
    let a = b.build();
    let expect = rcm_with_backend_directed(&a, BackendKind::Serial, ExpandDirection::Push);
    for threads in thread_counts_from_env(&[2, 5, 8]) {
        for policy in [ExpandDirection::Pull, ExpandDirection::Alternating] {
            let (got, stats) = par_rcm_directed(&a, threads, policy);
            assert_eq!(
                got,
                expect,
                "{threads} threads diverged under {}",
                policy.name()
            );
            assert!(stats.pull_expands > 0, "{threads} threads never pulled");
        }
    }
}
