//! Service-tier equivalence: the `OrderingService` front door (queue,
//! shards, pattern cache) must never change *what* is computed — every
//! report's permutation is bit-identical to a fresh single-shot
//! `rcm_with_backend` call, whether it came from a shard engine, a batch
//! group, or the pattern cache, on all four backends, at every
//! `RCM_THREADS` count (CI sweeps 1/2/8), and under concurrent submission
//! from many threads.

use distributed_rcm::core::{rcm_with_backend, thread_counts_from_env, PatternCache};
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::Vidx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random symmetric graph from a seed: n vertices, ~avg_deg·n/2 edges.
fn random_graph(n: usize, avg_deg: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::new(n, n);
    for _ in 0..(n * avg_deg / 2) {
        let u = rng.gen_range(0..n) as Vidx;
        let v = rng.gen_range(0..n) as Vidx;
        if u != v {
            b.push_sym(u, v);
        }
    }
    b.build()
}

/// The same random graph built through a different construction route:
/// edges pushed in reverse with endpoints swapped, plus a duplicated
/// prefix. The canonical CSC pattern — and therefore the fingerprint — is
/// identical; only the build history differs.
fn random_graph_scrambled_build(n: usize, avg_deg: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(Vidx, Vidx)> = Vec::new();
    for _ in 0..(n * avg_deg / 2) {
        let u = rng.gen_range(0..n) as Vidx;
        let v = rng.gen_range(0..n) as Vidx;
        if u != v {
            edges.push((u, v));
        }
    }
    let mut b = CooBuilder::new(n, n);
    for &(u, v) in edges.iter().rev() {
        b.push_sym(v, u);
    }
    for &(u, v) in edges.iter().take(edges.len() / 2) {
        b.push_sym(u, v);
    }
    b.build()
}

/// Backends to sweep: serial, pooled at every `RCM_THREADS` count, dist,
/// hybrid.
fn backend_kinds() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Serial];
    kinds.extend(
        thread_counts_from_env(&[1, 3])
            .into_iter()
            .map(|threads| BackendKind::Pooled { threads }),
    );
    kinds.push(BackendKind::Dist { cores: 4 });
    kinds.push(BackendKind::Hybrid {
        cores: 24,
        threads_per_proc: 6,
    });
    kinds
}

#[test]
fn concurrent_submits_are_deterministic_across_thread_counts() {
    // Several submitter threads push the same job mix at once; every
    // handle must resolve to the fresh single-shot permutation no matter
    // which shard (or batch group, or cache path) served it.
    let mats: Vec<CscMatrix> = (0..10)
        .map(|i| random_graph(30 + 13 * i, 3, 0xC0FFEE + i as u64))
        .collect();
    let fresh: Vec<Permutation> = mats
        .iter()
        .map(|a| rcm_with_backend(a, BackendKind::Serial))
        .collect();
    for threads in thread_counts_from_env(&[1, 2, 8]) {
        let config = ServiceConfig::new(
            EngineConfig::builder()
                .backend(BackendKind::Pooled { threads })
                .build(),
        )
        .shards(3)
        .queue_capacity(8); // small queue: exercise back-pressure too
        let service = OrderingService::start(config);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|round| {
                    let service = &service;
                    let mats = &mats;
                    scope.spawn(move || {
                        let handles: Vec<JobHandle> = mats
                            .iter()
                            .map(|a| service.submit(OrderingRequest::new(a.clone())))
                            .collect();
                        (round, handles)
                    })
                })
                .collect();
            for h in handles {
                let (round, job_handles) = h.join().expect("submitter thread");
                for (i, (jh, expect)) in job_handles.iter().zip(&fresh).enumerate() {
                    let report = jh.wait();
                    assert_eq!(
                        &report.perm, expect,
                        "job {i} of round {round} diverged at {threads} threads"
                    );
                }
            }
        });
        let stats = service.stats();
        assert_eq!(stats.submitted, 40);
        assert_eq!(stats.completed, 40);
        // Concurrent submits of one pattern may each miss (no in-flight
        // dedup), but re-inserting never duplicates an entry…
        assert!(stats.cache_entries <= mats.len(), "{stats:?}");
        // …and with every job drained, one more pass is all cache hits.
        for (a, expect) in mats.iter().zip(&fresh) {
            let report = service.submit(OrderingRequest::new(a.clone())).wait();
            assert_eq!(report.cache, Some(CacheOutcome::Hit));
            assert_eq!(&report.perm, expect);
        }
        assert_eq!(service.stats().cache_hits, stats.cache_hits + mats.len());
    }
}

#[test]
fn cached_permutation_is_bit_identical_on_every_backend() {
    let a = random_graph(120, 4, 42);
    let same_pattern = random_graph_scrambled_build(120, 4, 42);
    assert_eq!(a, same_pattern);
    for kind in backend_kinds() {
        let service = OrderingService::start(ServiceConfig::new(
            EngineConfig::builder().backend(kind).build(),
        ));
        let first = service.submit(OrderingRequest::new(a.clone())).wait();
        assert_eq!(first.cache, Some(CacheOutcome::Miss));
        // The equal pattern from the other construction route hits, and
        // the hit is bit-identical to a fresh ordering on this backend.
        let second = service
            .submit(OrderingRequest::new(same_pattern.clone()))
            .wait();
        assert_eq!(
            second.cache,
            Some(CacheOutcome::Hit),
            "{}: equal pattern must hit",
            kind.name()
        );
        let fresh = rcm_with_backend(&a, kind);
        assert_eq!(first.perm, fresh, "{}: miss path diverged", kind.name());
        assert_eq!(second.perm, fresh, "{}: cached path diverged", kind.name());
        assert_eq!(second.bandwidth_after, first.bandwidth_after);
    }
}

#[test]
fn forced_fingerprint_collision_cannot_cross_backends() {
    // Collision safety end-to-end: two different patterns forced into one
    // fingerprint slot must each keep their own permutation.
    let a = random_graph(60, 3, 7);
    let b = random_graph(60, 3, 8);
    assert_ne!(a, b);
    let mut engine = OrderingEngine::new(EngineConfig::builder().build());
    let (ra, rb) = (engine.order(&a), engine.order(&b));
    let mut cache = PatternCache::new(CacheConfig::default());
    let fp = 0x00DD_BA11; // deliberately shared
    cache.insert(fp, &a, &ra, StartNode::GeorgeLiu);
    cache.insert(fp, &b, &rb, StartNode::GeorgeLiu);
    assert_eq!(
        cache
            .lookup(fp, &a, StartNode::GeorgeLiu)
            .expect("entry a")
            .perm,
        ra.perm
    );
    assert_eq!(
        cache
            .lookup(fp, &b, StartNode::GeorgeLiu)
            .expect("entry b")
            .perm,
        rb.perm
    );
    assert_eq!(cache.stats().entries, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random patterns through the full service path: one miss then one
    /// hit per pattern, the hit bit-identical to the fresh single-shot
    /// ordering on all four backends.
    #[test]
    fn service_cache_roundtrip_is_bit_identical(
        n in 20usize..100, deg in 1usize..6, seed in 0u64..300
    ) {
        let a = random_graph(n, deg, seed);
        let twin = random_graph_scrambled_build(n, deg, seed);
        prop_assert_eq!(&a, &twin);
        for kind in backend_kinds() {
            let service = OrderingService::start(
                ServiceConfig::new(EngineConfig::builder().backend(kind).build()).shards(1),
            );
            let miss = service.submit(OrderingRequest::new(a.clone())).wait();
            let hit = service.submit(OrderingRequest::new(twin.clone())).wait();
            prop_assert_eq!(hit.cache, Some(CacheOutcome::Hit));
            let fresh = rcm_with_backend(&a, kind);
            prop_assert_eq!(
                &miss.perm, &fresh,
                "{} miss diverged (n={}, deg={}, seed={})", kind.name(), n, deg, seed
            );
            prop_assert_eq!(
                &hit.perm, &fresh,
                "{} hit diverged (n={}, deg={}, seed={})", kind.name(), n, deg, seed
            );
        }
    }
}
