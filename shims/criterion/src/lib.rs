//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of the Criterion API the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — each benchmark runs its closure
//! under a small time budget and reports the mean wall-clock time per
//! iteration (plus throughput when declared). That keeps `cargo bench`
//! runnable and useful for relative comparisons without Criterion's
//! dependency tree; swap the shim for the real crate to get rigorous
//! statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-benchmark time budget (after one warm-up call).
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declared per-iteration work, used to print throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f`, running it repeatedly under the shim's time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let budget_start = Instant::now();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while budget_start.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            std::hint::black_box(f());
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(full_name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 0,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let mut line = format!(
        "{full_name:<40} {:>12}/iter ({} iters)",
        fmt_ns(bencher.mean_ns),
        bencher.iters
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / (bencher.mean_ns / 1e9);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.2} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.2} MB/s", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim uses a time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, None, |b| f(b));
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
