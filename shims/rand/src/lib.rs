//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this shim provides the
//! (small) subset of the `rand 0.8` API the workspace uses: a seedable
//! deterministic generator plus `gen`, `gen_range` and `gen_bool`. The
//! generator is xoshiro256** seeded via SplitMix64 — high-quality and stable
//! across platforms, which is all the synthetic-matrix generators need.
//! Streams are NOT bit-compatible with the real `rand` crate; everything in
//! this workspace only relies on per-seed determinism, not on matching
//! upstream streams.

pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A value type `gen()` can produce.
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next() >> 32) as u32
    }
}

/// A range `gen_range()` can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Uniform draw from `[lo, lo + span)` in i128 arithmetic so no bound
/// combination of the exposed (≤ 64-bit) types can overflow — including
/// `1..=u64::MAX` and `i64::MIN..i64::MAX`.
fn sample_span(lo: i128, span: i128, rng: &mut StdRng) -> i128 {
    debug_assert!(span >= 1);
    let span = span as u128;
    if span > u64::MAX as u128 {
        // Full 64-bit span: every u64 draw is already uniform.
        return lo + rng.next() as i128;
    }
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64,
    // irrelevant for graph generation.
    lo + ((rng.next() as u128 * span) >> 64) as i128
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_span(
                    self.start as i128,
                    self.end as i128 - self.start as i128,
                    rng,
                ) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                sample_span(lo as i128, hi as i128 - lo as i128 + 1, rng) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized;

    /// A uniformly random value within `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized;

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized;
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!(
            (sum / 1000.0 - 0.5).abs() < 0.05,
            "mean {:.3}",
            sum / 1000.0
        );
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = rng.gen_range(1u64..=u64::MAX);
            assert!(v >= 1);
            let w = rng.gen_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
            let full = rng.gen_range(u64::MIN..=u64::MAX);
            let _ = full;
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
