//! Strategies: deterministic random value generation (no shrinking).

use crate::test_runner::{TestRng, TestRunner};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: `generate` draws one value
/// from the runner's deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> Flatten<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        Flatten { inner: self, f }
    }

    /// Transform generated values with access to a forked RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Sample a value tree from this strategy (shim: a single sampled value).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Self::Value>, &'static str>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(Sampled(self.generate(runner.rng_mut())))
    }
}

/// A generated value, playing the role of proptest's shrinkable tree.
pub trait ValueTree {
    /// The type of value this tree holds.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;
}

/// The trivial value tree: one sampled value.
#[derive(Clone, Debug)]
pub struct Sampled<T>(pub T);

impl<T: Clone> ValueTree for Sampled<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct Flatten<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for Flatten<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone, Debug)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.f)(value, rng.fork())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_range(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.int_range(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32, u8, i8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}
