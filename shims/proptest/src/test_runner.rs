//! Test execution: configuration, deterministic RNG, and the runner.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Panic payload used by `prop_assume!` to discard a case.
pub struct Rejected(pub &'static str);

/// Runner configuration (only `cases` is honored by the shim).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Raw 64 random bits (used by `prop_perturb` closures).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// An independent child RNG (consumes one draw from `self`).
    pub fn fork(&mut self) -> TestRng {
        TestRng::from_seed(self.next_u64())
    }

    pub(crate) fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    pub(crate) fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    pub(crate) fn int_range(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty strategy range");
        let span = (hi - lo + 1) as u128;
        if span == 0 {
            // Full 128-bit span cannot occur for the <= 64-bit types we expose.
            return self.next_u64() as i128;
        }
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// Runs a property's cases against a deterministic RNG.
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Runner seeded from the test name, so every run draws the same cases.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: TestRng::from_seed(seed),
            cases: config.cases,
        }
    }

    /// A fixed-seed runner (mirrors `TestRunner::deterministic`).
    pub fn deterministic() -> Self {
        TestRunner {
            rng: TestRng::from_seed(0x8c5f_21ab_03d6_e94d),
            cases: ProptestConfig::default().cases,
        }
    }

    /// Number of cases this runner executes.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's RNG.
    pub fn rng_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Install (once) a panic hook that silences `prop_assume!` rejections while
/// delegating every real panic to the previous hook.
pub fn install_rejection_hook() {
    use std::sync::Once;
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Rejected>().is_none() {
                prev(info);
            }
        }));
    });
}
