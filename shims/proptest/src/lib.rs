//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//!   `prop_perturb` / `new_tree`, plus [`strategy::ValueTree`],
//! * range, tuple, [`Just`] and [`collection::vec`] strategies,
//! * [`test_runner::TestRunner`] / [`test_runner::ProptestConfig`].
//!
//! Semantics: each test runs `cases` iterations with inputs drawn from a
//! deterministic RNG seeded from the test name, so failures reproduce across
//! runs. There is **no shrinking** — a failing case reports its case number
//! and panics with the original assertion message.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::Just;

/// Assert inside a property (no shrinking: maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discard the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            ::std::panic::panic_any($crate::test_runner::Rejected(stringify!($cond)));
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::install_rejection_hook();
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                let total = runner.cases();
                let mut rejected = 0u32;
                for case in 0..total {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), runner.rng_mut());
                    )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = outcome {
                        if payload.is::<$crate::test_runner::Rejected>() {
                            rejected += 1;
                            continue;
                        }
                        eprintln!(
                            "proptest `{}` failed on case {}/{} (deterministic; re-run reproduces)",
                            stringify!($name),
                            case + 1,
                            total,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
                if rejected == total && total > 0 {
                    panic!(
                        "proptest `{}`: every case was rejected by prop_assume!",
                        stringify!($name),
                    );
                }
            }
        )*
    };
}
